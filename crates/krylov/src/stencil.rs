//! Stencil matrix generators — the paper's model problems for CA-KSMs:
//! `(2b+1)^d`-point stencils on d-dimensional Cartesian meshes.

use crate::csr::Csr;

/// 1-D Laplacian-type band matrix on `n` points with half-bandwidth `b`:
/// diagonal `2b + shift`, off-diagonals `-1` within distance `b` (SPD for
/// `shift > 0`).
pub fn band_1d(n: usize, b: usize, shift: f64) -> Csr {
    let mut t = Vec::new();
    for i in 0..n {
        t.push((i, i, 2.0 * b as f64 + shift));
        for d in 1..=b {
            if i >= d {
                t.push((i, i - d, -1.0));
            }
            if i + d < n {
                t.push((i, i + d, -1.0));
            }
        }
    }
    Csr::from_triplets(n, n, t)
}

/// Standard 5-point Laplacian on an `nx × ny` grid plus `shift·I`
/// (SPD for `shift ≥ 0`, strictly for `shift > 0` or with Dirichlet
/// boundary which this is).
pub fn laplacian_2d(nx: usize, ny: usize, shift: f64) -> Csr {
    let n = nx * ny;
    let idx = |i: usize, j: usize| i * ny + j;
    let mut t = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            let r = idx(i, j);
            t.push((r, r, 4.0 + shift));
            if i > 0 {
                t.push((r, idx(i - 1, j), -1.0));
            }
            if i + 1 < nx {
                t.push((r, idx(i + 1, j), -1.0));
            }
            if j > 0 {
                t.push((r, idx(i, j - 1), -1.0));
            }
            if j + 1 < ny {
                t.push((r, idx(i, j + 1), -1.0));
            }
        }
    }
    Csr::from_triplets(n, n, t)
}

/// 7-point Laplacian on an `nx × ny × nz` grid plus `shift·I`.
pub fn laplacian_3d(nx: usize, ny: usize, nz: usize, shift: f64) -> Csr {
    let n = nx * ny * nz;
    let idx = |i: usize, j: usize, k: usize| (i * ny + j) * nz + k;
    let mut t = Vec::new();
    for i in 0..nx {
        for j in 0..ny {
            for k in 0..nz {
                let r = idx(i, j, k);
                t.push((r, r, 6.0 + shift));
                if i > 0 {
                    t.push((r, idx(i - 1, j, k), -1.0));
                }
                if i + 1 < nx {
                    t.push((r, idx(i + 1, j, k), -1.0));
                }
                if j > 0 {
                    t.push((r, idx(i, j - 1, k), -1.0));
                }
                if j + 1 < ny {
                    t.push((r, idx(i, j + 1, k), -1.0));
                }
                if k > 0 {
                    t.push((r, idx(i, j, k - 1), -1.0));
                }
                if k + 1 < nz {
                    t.push((r, idx(i, j, k + 1), -1.0));
                }
            }
        }
    }
    Csr::from_triplets(n, n, t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_1d_structure() {
        let a = band_1d(10, 2, 1.0);
        assert_eq!(a.rows, 10);
        // Interior row has 2b+1 = 5 entries.
        assert_eq!(a.row_ptr[6] - a.row_ptr[5], 5);
        // Corner row has b+1 = 3.
        assert_eq!(a.row_ptr[1] - a.row_ptr[0], 3);
        let row = a.to_dense_row(5);
        assert_eq!(row[5], 5.0);
        assert_eq!(row[3], -1.0);
        assert_eq!(row[7], -1.0);
        assert_eq!(row[2], 0.0);
    }

    #[test]
    fn laplacian_2d_row_sums() {
        // Interior rows sum to shift; boundary rows to more.
        let a = laplacian_2d(5, 5, 0.5);
        let center = a.to_dense_row(12); // (2,2): interior
        assert!((center.iter().sum::<f64>() - 0.5).abs() < 1e-12);
        let corner = a.to_dense_row(0);
        assert!((corner.iter().sum::<f64>() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn laplacian_2d_symmetric() {
        let a = laplacian_2d(4, 6, 0.0);
        for r in 0..a.rows {
            let row = a.to_dense_row(r);
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    assert_eq!(a.to_dense_row(c)[r], v, "asym at ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn laplacian_3d_nnz() {
        let a = laplacian_3d(3, 3, 3, 0.0);
        // 27 nodes; total nnz = 27 (diag) + 2*edges; edges = 3 directions
        // * 2*3*3... per direction (3-1)*3*3 = 18 edges -> 54 edges total,
        // each giving 2 off-diagonal entries... 27 + 108? No: each edge
        // contributes 2 entries (one per endpoint row): 3*18 = 54 edges,
        // 108 off-diagonals.
        assert_eq!(a.nnz(), 27 + 108);
    }

    #[test]
    fn spd_via_gershgorin() {
        // Diagonal dominance with positive diagonal => SPD.
        for a in [band_1d(20, 3, 0.1), laplacian_2d(6, 6, 0.1)] {
            for r in 0..a.rows {
                let row = a.to_dense_row(r);
                let diag = row[r];
                let off: f64 = row
                    .iter()
                    .enumerate()
                    .filter(|&(c, _)| c != r)
                    .map(|(_, v)| v.abs())
                    .sum();
                assert!(diag > off - 1e-12, "row {r} not dominant");
            }
        }
    }
}
