//! CA-CG (paper Algorithm 7) with blockwise and *streaming* matrix powers.
//!
//! One outer iteration advances the solve by `s` conventional CG steps:
//!
//! 1. build the 2s+1 Krylov basis vectors `[P, R]` blockwise (matrix
//!    powers kernel with ghost zones);
//! 2. accumulate the Gram matrix `G = [P,R]ᵀ[P,R]` block by block;
//! 3. run `s` CG steps entirely in 2s+1-dimensional coefficient space
//!    (no slow-memory traffic);
//! 4. recover `[p, r, x] = [P,R]·[p̂, r̂, x̂] + [0, 0, x]`.
//!
//! The **storing** form writes the basis to slow memory in step 1 and
//! re-reads it in step 4: `Θ(s·n)` writes per outer iteration — the same
//! order as `s` steps of CG. The **streaming** form (§8, "streaming matrix
//! powers") discards each basis block after accumulating it into `G`, and
//! *recomputes* it in step 4: only the `3n` output words are written per
//! outer iteration, a `Θ(s)` write reduction for ≤ 2× more reads and
//! flops. Both forms perform identical arithmetic (the tests check
//! bit-identical iterates).

use crate::basis::{h_apply, BasisKind};
use crate::cg::SolveResult;
use crate::counter::IoSink;
use crate::csr::Csr;
use memsim::LINE_WORDS;

/// Options for one CA-CG run.
#[derive(Clone, Debug)]
pub struct CaCgOptions {
    /// Steps per outer iteration.
    pub s: usize,
    pub basis: BasisKind,
    /// Streaming matrix powers: do not store the basis; recompute it for
    /// the recovery step.
    pub streaming: bool,
    /// Row-block size of the blockwise matrix powers kernel.
    pub block_rows: usize,
    pub tol: f64,
    /// Maximum *outer* iterations (each worth `s` CG steps).
    pub max_outer: usize,
}

impl Default for CaCgOptions {
    fn default() -> Self {
        CaCgOptions {
            s: 4,
            basis: BasisKind::Monomial,
            streaming: true,
            block_rows: 64,
            tol: 1e-10,
            max_outer: 1000,
        }
    }
}

/// Dependency ranges for one row block: `rg[j]` is the row range on which
/// the degree-`j` basis vector must be known so that rows `[r0, r1)` of
/// the degree-`maxdeg` vector are computable.
fn ghost_ranges(a: &Csr, r0: usize, r1: usize, maxdeg: usize) -> Vec<(usize, usize)> {
    let mut rg = vec![(r0, r1); maxdeg + 1];
    for j in (0..maxdeg).rev() {
        let (lo, hi) = rg[j + 1];
        rg[j] = a.reach_range(lo, hi);
    }
    rg
}

/// Compute rows `[r0, r1)` of all basis columns for seed `v` (degree 0) up
/// to degree `maxdeg`, using ghost zones. Returns, for each degree `j`,
/// the values on `rg[j]` (so callers can slice out `[r0, r1)`), plus the
/// ranges. Charges reads for the seed (resident at nominal address
/// `vseed`) and the matrix rows touched (values at `va`).
#[allow(clippy::too_many_arguments)] // matrix + seed + range + two addresses; the recursion-free body keeps them flat
fn block_powers<S: IoSink>(
    a: &Csr,
    v: &[f64],
    vseed: usize,
    va: usize,
    r0: usize,
    r1: usize,
    maxdeg: usize,
    shifts: &BasisKind,
    io: &mut S,
) -> (Vec<Vec<f64>>, Vec<(usize, usize)>) {
    let rg = ghost_ranges(a, r0, r1, maxdeg);
    let n = a.rows;
    let mut levels: Vec<Vec<f64>> = Vec::with_capacity(maxdeg + 1);
    // Degree 0: read the seed on the widest range.
    let (lo0, hi0) = rg[0];
    io.read_at(vseed + lo0, hi0 - lo0);
    let mut cur = vec![0.0; n];
    cur[lo0..hi0].copy_from_slice(&v[lo0..hi0]);
    levels.push(cur.clone());
    for j in 0..maxdeg {
        let (lo, hi) = rg[j + 1];
        let mut next = vec![0.0; n];
        a.spmv_range(&cur, &mut next, lo, hi);
        // Matrix rows [lo, hi) are read once per level.
        let nnz_rows: usize = a.row_ptr[hi] - a.row_ptr[lo];
        io.read_at(va + a.row_ptr[lo], nnz_rows);
        io.flop(2 * nnz_rows);
        let theta = shifts.shift(j);
        if theta != 0.0 {
            for i in lo..hi {
                next[i] -= theta * cur[i];
            }
            io.flop(2 * (hi - lo));
        }
        levels.push(next.clone());
        cur = next;
    }
    (levels, rg)
}

/// CA-CG solve of SPD `A·x = b`. See [`CaCgOptions`]; returns iterates
/// equivalent (in exact arithmetic) to `s·outer` steps of [`crate::cg::cg`].
pub fn ca_cg<S: IoSink>(
    a: &Csr,
    b: &[f64],
    x0: &[f64],
    opts: &CaCgOptions,
    io: &mut S,
) -> SolveResult {
    let n = a.rows;
    let s = opts.s;
    assert!(s >= 1);
    let m = 2 * s + 1;
    let h = opts.basis.h_matrix(s);
    let bs = opts.block_rows.max(1);

    // Nominal slow-memory layout: line-aligned spans for x, r, p, b, the
    // matrix values, and (storing variant) the n×m basis V. The tally
    // ignores the addresses; the simulated sink caches them.
    let n8 = n.div_ceil(LINE_WORDS) * LINE_WORDS;
    let (vx, vr, vp, vb, va) = (0, n8, 2 * n8, 3 * n8, 4 * n8);
    let vv = va + a.nnz().div_ceil(LINE_WORDS) * LINE_WORDS;

    let mut x = x0.to_vec();
    // r = b − A·x0; p = r.
    let mut r = vec![0.0; n];
    a.spmv(&x, &mut r);
    // One message per stream: the matrix, then each n-vector.
    io.read_at(va, a.nnz());
    io.read_at(vx, n);
    io.write_at(vr, n);
    io.flop(2 * a.nnz());
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    io.read_at(vb, n);
    io.read_at(vr, n);
    io.write_at(vr, n);
    let mut p = r.clone();
    io.read_at(vr, n);
    io.write_at(vp, n);

    let bnorm = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    let mut delta = r.iter().map(|v| v * v).sum::<f64>();
    io.read_at(vr, n);
    io.flop(2 * n);
    let mut history = vec![delta.sqrt() / bnorm];
    let mut outer = 0;

    while outer < opts.max_outer && delta.sqrt() / bnorm > opts.tol {
        // ---- Steps 1 + 2: basis and Gram matrix, blockwise. The storing
        // variant also materializes V (n×m) in slow memory.
        let mut g = vec![vec![0.0; m]; m];
        let mut v_store: Option<Vec<Vec<f64>>> = if opts.streaming {
            None
        } else {
            Some(vec![vec![0.0; n]; m])
        };
        let mut r0 = 0;
        while r0 < n {
            let r1 = (r0 + bs).min(n);
            let (pl, _) = block_powers(a, &p, vp, va, r0, r1, s, &opts.basis, io);
            let (rl, _) = block_powers(a, &r, vr, va, r0, r1, s - 1, &opts.basis, io);
            // Column view of this block: degrees 0..s from p, 0..s-1 from r.
            let col = |j: usize, i: usize| -> f64 {
                if j <= s {
                    pl[j][i]
                } else {
                    rl[j - s - 1][i]
                }
            };
            // G += V(I,:)ᵀ V(I,:). Indexing (not iterators): the symmetric
            // write g[j2][j1] needs the second row by index anyway.
            #[allow(clippy::needless_range_loop)]
            for j1 in 0..m {
                for j2 in j1..m {
                    let mut acc = 0.0;
                    for i in r0..r1 {
                        acc += col(j1, i) * col(j2, i);
                    }
                    g[j1][j2] += acc;
                    if j1 != j2 {
                        g[j2][j1] = g[j1][j2];
                    }
                }
            }
            io.flop(2 * m * m * (r1 - r0) / 2);
            if let Some(vs) = v_store.as_mut() {
                for (j, vj) in vs.iter_mut().enumerate() {
                    for (i, v) in vj[r0..r1].iter_mut().enumerate() {
                        *v = col(j, r0 + i);
                    }
                    // One write run per basis column block: the storing
                    // variant's Θ(s·n) slow-memory writes.
                    io.write_at(vv + j * n8 + r0, r1 - r0);
                }
            }
            r0 = r1;
        }

        // ---- Step 3: s steps in coefficient space (fast memory only).
        let mut xh = vec![0.0; m];
        let mut ph = vec![0.0; m];
        ph[0] = 1.0;
        let mut rh = vec![0.0; m];
        rh[s + 1] = 1.0;
        let gdot = |u: &[f64], w: &[f64]| -> f64 {
            let mut acc = 0.0;
            for i in 0..m {
                if u[i] == 0.0 {
                    continue;
                }
                for j in 0..m {
                    acc += u[i] * g[i][j] * w[j];
                }
            }
            acc
        };
        let mut dp = delta;
        let mut breakdown = false;
        for _ in 0..s {
            let wh = h_apply(&h, &ph);
            let denom = gdot(&ph, &wh);
            if !denom.is_finite() || denom.abs() < 1e-300 {
                breakdown = true;
                break;
            }
            let alpha = dp / denom;
            for i in 0..m {
                xh[i] += alpha * ph[i];
                rh[i] -= alpha * wh[i];
            }
            let dc = gdot(&rh, &rh).max(0.0);
            let beta = dc / dp;
            for i in 0..m {
                ph[i] = rh[i] + beta * ph[i];
            }
            dp = dc;
        }

        // ---- Step 4: recover [p, r, x], blockwise (streaming recomputes
        // the basis; storing re-reads it). The streaming recomputation
        // must see the *old* p and r even in ghost zones already
        // overwritten by earlier blocks, so it reads from snapshots (in
        // the real machine these are simply the old locations, with the
        // new vectors written to fresh addresses — no extra traffic).
        let (p_old, r_old) = if opts.streaming {
            (p.clone(), r.clone())
        } else {
            (Vec::new(), Vec::new())
        };
        let mut r0b = 0;
        while r0b < n {
            let r1b = (r0b + bs).min(n);
            if let Some(vs) = v_store.as_ref() {
                for j in 0..m {
                    io.read_at(vv + j * n8 + r0b, r1b - r0b);
                }
                for i in r0b..r1b {
                    let (mut np, mut nr, mut nx) = (0.0, 0.0, 0.0);
                    for j in 0..m {
                        let vij = vs[j][i];
                        np += vij * ph[j];
                        nr += vij * rh[j];
                        nx += vij * xh[j];
                    }
                    p[i] = np;
                    r[i] = nr;
                    x[i] += nx;
                }
            } else {
                // Streaming recomputation reads the *old* p and r at
                // their original addresses (the new vectors land at the
                // same spans only after this block's writes).
                let (pl, _) = block_powers(a, &p_old, vp, va, r0b, r1b, s, &opts.basis, io);
                let (rl, _) = block_powers(a, &r_old, vr, va, r0b, r1b, s - 1, &opts.basis, io);
                let col = |j: usize, i: usize| -> f64 {
                    if j <= s {
                        pl[j][i]
                    } else {
                        rl[j - s - 1][i]
                    }
                };
                for i in r0b..r1b {
                    let (mut np, mut nr, mut nx) = (0.0, 0.0, 0.0);
                    for j in 0..m {
                        let vij = col(j, i);
                        np += vij * ph[j];
                        nr += vij * rh[j];
                        nx += vij * xh[j];
                    }
                    p[i] = np;
                    r[i] = nr;
                    x[i] += nx;
                }
            }
            io.flop(6 * m * (r1b - r0b));
            // p, r, x — the only writes of the streaming variant.
            io.write_at(vp + r0b, r1b - r0b);
            io.write_at(vr + r0b, r1b - r0b);
            io.write_at(vx + r0b, r1b - r0b);
            r0b = r1b;
        }

        delta = dp.max(0.0);
        outer += 1;
        history.push(delta.sqrt() / bnorm);
        if breakdown {
            break;
        }
    }

    let mut ax = vec![0.0; n];
    a.spmv(&x, &mut ax);
    let res = b
        .iter()
        .zip(&ax)
        .map(|(u, v)| (u - v) * (u - v))
        .sum::<f64>()
        .sqrt();
    SolveResult {
        x,
        iters: outer * s,
        residual: res,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::cg;
    use crate::counter::IoTally;
    use crate::stencil::{band_1d, laplacian_2d};
    use wa_core::XorShift;

    /// BUG GUARD: streaming recovery must use the *old* p/r for
    /// recomputation within a block even while overwriting them — hence
    /// the deferred-update dance; this test would catch in-place damage.
    #[test]
    fn streaming_and_storing_agree_bitwise() {
        let a = laplacian_2d(10, 10, 0.2);
        let n = a.rows;
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 + 1) as f64).sin()).collect();
        for s in [2usize, 4] {
            let mut o1 = CaCgOptions {
                s,
                streaming: true,
                max_outer: 12,
                block_rows: 17,
                ..Default::default()
            };
            let mut io1 = IoTally::default();
            let r1 = ca_cg(&a, &b, &vec![0.0; n], &o1, &mut io1);
            o1.streaming = false;
            let mut io2 = IoTally::default();
            let r2 = ca_cg(&a, &b, &vec![0.0; n], &o1, &mut io2);
            for (u, v) in r1.x.iter().zip(&r2.x) {
                assert_eq!(u, v, "s={s}: streaming must be a pure reordering");
            }
        }
    }

    #[test]
    fn cacg_matches_cg_iterates() {
        // In exact arithmetic CA-CG reproduces CG; with a well-conditioned
        // operator and small s the solutions agree tightly.
        let a = laplacian_2d(8, 8, 0.5);
        let n = a.rows;
        let mut rng = XorShift::new(6);
        let xt: Vec<f64> = (0..n).map(|_| rng.next_unit() - 0.5).collect();
        let mut b = vec![0.0; n];
        a.spmv(&xt, &mut b);
        let mut io = IoTally::default();
        let rcg = cg(&a, &b, &vec![0.0; n], 1e-12, 400, &mut io);
        let mut io2 = IoTally::default();
        let rca = ca_cg(
            &a,
            &b,
            &vec![0.0; n],
            &CaCgOptions {
                s: 4,
                tol: 1e-12,
                max_outer: 100,
                ..Default::default()
            },
            &mut io2,
        );
        assert!(rca.residual < 1e-8, "CA-CG residual {}", rca.residual);
        for (u, v) in rca.x.iter().zip(&rcg.x) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn newton_basis_agrees_with_monomial() {
        let a = band_1d(80, 2, 0.5);
        let b = vec![1.0; 80];
        let run = |basis: BasisKind| {
            let mut io = IoTally::default();
            ca_cg(
                &a,
                &b,
                &vec![0.0; 80],
                &CaCgOptions {
                    s: 3,
                    basis,
                    tol: 1e-11,
                    ..Default::default()
                },
                &mut io,
            )
        };
        let rm = run(BasisKind::Monomial);
        // Shifts near the spectrum's center.
        let rn = run(BasisKind::Newton(vec![4.0, 4.5, 4.25]));
        assert!(rm.residual < 1e-8);
        assert!(rn.residual < 1e-8);
        for (u, v) in rm.x.iter().zip(&rn.x) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    /// The paper's Section 8 headline: streaming reduces writes by Θ(s)
    /// while reads/flops grow by at most ~2×.
    #[test]
    fn streaming_write_reduction_theta_s() {
        let a = laplacian_2d(24, 24, 0.2);
        let n = a.rows;
        let b: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let s = 6;
        // Force a fixed amount of work: tiny tol, capped outers.
        let outers = 10;
        let base = CaCgOptions {
            s,
            tol: 1e-30,
            max_outer: outers,
            block_rows: 48,
            ..Default::default()
        };
        let mut io_stream = IoTally::default();
        let _ = ca_cg(&a, &b, &vec![0.0; n], &base, &mut io_stream);
        let mut store = base.clone();
        store.streaming = false;
        let mut io_store = IoTally::default();
        let _ = ca_cg(&a, &b, &vec![0.0; n], &store, &mut io_store);
        let mut io_cg = IoTally::default();
        let _ = cg(&a, &b, &vec![0.0; n], 1e-30, outers * s, &mut io_cg);

        // Writes: CG ≈ 4n/step; storing CA-CG ≈ (2s+4)n/s per step;
        // streaming ≈ 3n/s per step.
        let w_cg = io_cg.writes() as f64;
        let w_store = io_store.writes() as f64;
        let w_stream = io_stream.writes() as f64;
        assert!(
            w_stream < w_cg / (s as f64 / 2.0),
            "streaming {w_stream} should be ≪ CG {w_cg} (s = {s})"
        );
        assert!(
            w_stream < w_store / (s as f64 / 2.0),
            "streaming {w_stream} should be ≪ storing {w_store}"
        );
        // Reads/flops at most ~2× the storing variant, as the paper says.
        assert!(
            io_stream.reads() < 2 * io_store.reads() + 1000,
            "reads {} vs {}",
            io_stream.reads(),
            io_store.reads()
        );
        assert!(io_stream.flops < 2 * io_store.flops + 1000);
    }
}
