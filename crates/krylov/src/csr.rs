//! Compressed-sparse-row matrices and SpMV kernels.

/// CSR sparse matrix (square or rectangular).
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    pub rows: usize,
    pub cols: usize,
    pub row_ptr: Vec<usize>,
    pub col_idx: Vec<usize>,
    pub vals: Vec<f64>,
}

impl Csr {
    /// Build from (row, col, value) triplets; duplicates are summed.
    pub fn from_triplets(rows: usize, cols: usize, mut t: Vec<(usize, usize, f64)>) -> Self {
        t.sort_by_key(|a| (a.0, a.1));
        let mut row_ptr = vec![0usize; rows + 1];
        let mut col_idx = Vec::with_capacity(t.len());
        let mut vals: Vec<f64> = Vec::with_capacity(t.len());
        let mut cur_row = 0usize;
        for &(r, c, v) in &t {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of range");
            while cur_row < r {
                cur_row += 1;
                row_ptr[cur_row] = col_idx.len();
            }
            // Merge a duplicate (same row, same column as the previous
            // entry of this row).
            if col_idx.len() > row_ptr[r] && *col_idx.last().unwrap() == c {
                *vals.last_mut().unwrap() += v;
            } else {
                col_idx.push(c);
                vals.push(v);
            }
        }
        while cur_row < rows {
            cur_row += 1;
            row_ptr[cur_row] = col_idx.len();
        }
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A·x` over the full row range.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        self.spmv_range(x, y, 0, self.rows);
    }

    /// `y[r] = Σ A[r,c]·x[c]` for rows `r ∈ [r0, r1)` only (the blockwise
    /// matrix-powers building block; other entries of `y` untouched).
    pub fn spmv_range(&self, x: &[f64], y: &mut [f64], r0: usize, r1: usize) {
        assert!(x.len() >= self.cols && y.len() >= self.rows && r1 <= self.rows);
        for (r, yr) in y[r0..r1].iter_mut().enumerate() {
            let r = r0 + r;
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Parallel SpMV over `threads` row slabs using std scoped threads.
    /// Deterministic (each thread owns a disjoint output slab).
    pub fn spmv_parallel(&self, x: &[f64], y: &mut [f64], threads: usize) {
        assert!(threads >= 1);
        let rows = self.rows;
        let chunk = rows.div_ceil(threads);
        let slabs: Vec<&mut [f64]> = y[..rows].chunks_mut(chunk).collect();
        std::thread::scope(|s| {
            for (t, slab) in slabs.into_iter().enumerate() {
                let r0 = t * chunk;
                s.spawn(move || {
                    for (i, out) in slab.iter_mut().enumerate() {
                        let r = r0 + i;
                        let mut acc = 0.0;
                        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                            acc += self.vals[k] * x[self.col_idx[k]];
                        }
                        *out = acc;
                    }
                });
            }
        });
    }

    /// Smallest and largest column index reachable from rows `[r0, r1)` —
    /// one step of range-based dependency closure (exact for banded
    /// matrices, conservative in general). Returns `(c_min, c_max+1)`.
    pub fn reach_range(&self, r0: usize, r1: usize) -> (usize, usize) {
        let mut lo = usize::MAX;
        let mut hi = 0usize;
        for r in r0..r1 {
            let (s, e) = (self.row_ptr[r], self.row_ptr[r + 1]);
            if s < e {
                lo = lo.min(self.col_idx[s..e].iter().copied().min().unwrap());
                hi = hi.max(self.col_idx[s..e].iter().copied().max().unwrap() + 1);
            }
        }
        if lo == usize::MAX {
            (r0, r1)
        } else {
            (lo.min(r0), hi.max(r1))
        }
    }

    /// Dense reference multiply for small verification cases.
    pub fn to_dense_row(&self, r: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
            out[self.col_idx[k]] += self.vals[k];
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wa_core::XorShift;

    fn small() -> Csr {
        // [2 1 0]
        // [0 3 0]
        // [4 0 5]
        Csr::from_triplets(
            3,
            3,
            vec![
                (0, 0, 2.0),
                (0, 1, 1.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn spmv_small() {
        let a = small();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![4.0, 6.0, 19.0]);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn empty_rows_are_handled() {
        let a = Csr::from_triplets(4, 4, vec![(0, 0, 1.0), (3, 3, 2.0)]);
        let mut y = vec![9.0; 4];
        a.spmv(&[1.0, 1.0, 1.0, 1.0], &mut y);
        assert_eq!(y, vec![1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn range_spmv_touches_only_range() {
        let a = small();
        let mut y = vec![-1.0; 3];
        a.spmv_range(&[1.0, 1.0, 1.0], &mut y, 1, 2);
        assert_eq!(y, vec![-1.0, 3.0, -1.0]);
    }

    #[test]
    fn parallel_matches_sequential() {
        let n = 500;
        let mut rng = XorShift::new(4);
        let mut t = Vec::new();
        for r in 0..n {
            for _ in 0..5 {
                t.push((r, rng.next_below(n), rng.next_unit()));
            }
        }
        let a = Csr::from_triplets(n, n, t);
        let x: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut y1 = vec![0.0; n];
        let mut y2 = vec![0.0; n];
        a.spmv(&x, &mut y1);
        for threads in [1, 2, 4, 7] {
            a.spmv_parallel(&x, &mut y2, threads);
            for (u, v) in y1.iter().zip(&y2) {
                assert!((u - v).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn reach_range_expands_by_bandwidth() {
        // Tridiagonal: reach of [5,6) is [4,7).
        let n = 10;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i > 0 {
                t.push((i, i - 1, -1.0));
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
            }
        }
        let a = Csr::from_triplets(n, n, t);
        assert_eq!(a.reach_range(5, 6), (4, 7));
        assert_eq!(a.reach_range(0, 1), (0, 2));
    }

    #[test]
    fn duplicate_triplets_sum() {
        let a = Csr::from_triplets(2, 2, vec![(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(a.to_dense_row(0)[0], 3.5);
    }
}
