//! # krylov — write-avoiding Krylov subspace methods
//!
//! Section 8 of the paper: s-step (communication-avoiding) Krylov methods
//! take `s` iterations of CG for the communication cost of one, and the
//! *streaming matrix powers* optimization additionally reduces the number
//! of writes to slow memory by Θ(s) — at the cost of computing the Krylov
//! basis twice (≤ 2× reads and flops).
//!
//! * [`csr`] — compressed-sparse-row matrices with sequential, ranged, and
//!   thread-parallel SpMV;
//! * [`stencil`] — (2b+1)^d-point Laplacian-type stencils on 1/2/3-D
//!   meshes, the paper's model problems;
//! * [`counter`] — slow-memory traffic tally under the explicit model
//!   (vectors and matrix in slow memory, O(s)-sized objects in fast);
//! * [`cg::cg`] — conjugate gradients (paper Algorithm 6);
//! * [`basis`] — s-step polynomial bases (monomial and Newton) and their
//!   recurrence matrices `H`;
//! * [`cacg`] — CA-CG (paper Algorithm 7) with blockwise matrix powers,
//!   in both storing and streaming forms.

pub mod basis;
pub mod cacg;
pub mod cg;
pub mod counter;
pub mod csr;
pub mod stencil;
pub mod tsqr;
pub mod workloads;

pub use basis::BasisKind;
pub use cacg::{ca_cg, CaCgOptions};
pub use cg::cg;
pub use counter::{IoTally, SimIo, StackIo};
pub use csr::Csr;
