//! Slow-memory traffic tally for the Krylov kernels.
//!
//! Explicit-model convention of §8: the matrix and all n-vectors reside in
//! slow memory (n ≫ M₁); scalars and every O(s)×O(s) object live in fast
//! memory for free. Kernels charge reads and writes of vector/matrix words
//! as they stream them.

/// Word counts of slow-memory traffic (the `W12` of the paper's §8).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoTally {
    /// Words read from slow memory.
    pub reads: u64,
    /// Words written to slow memory.
    pub writes: u64,
    /// Floating-point operations.
    pub flops: u64,
}

impl IoTally {
    pub fn read(&mut self, words: usize) {
        self.reads += words as u64;
    }

    pub fn write(&mut self, words: usize) {
        self.writes += words as u64;
    }

    pub fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    /// Writes per "CG-step equivalent" given `steps` conventional
    /// iterations' worth of progress.
    pub fn writes_per_step(&self, steps: usize) -> f64 {
        self.writes as f64 / steps.max(1) as f64
    }
}

impl std::ops::AddAssign for IoTally {
    fn add_assign(&mut self, o: IoTally) {
        self.reads += o.reads;
        self.writes += o.writes;
        self.flops += o.flops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut t = IoTally::default();
        t.read(10);
        t.write(4);
        t.flop(100);
        let mut u = IoTally::default();
        u.read(1);
        u += t;
        assert_eq!(u.reads, 11);
        assert_eq!(u.writes, 4);
        assert_eq!(u.flops, 100);
        assert_eq!(t.writes_per_step(2), 2.0);
    }
}
