//! Slow-memory traffic charging for the Krylov kernels.
//!
//! Explicit-model convention of §8: the matrix and all n-vectors reside in
//! slow memory (n ≫ M₁); scalars and every O(s)×O(s) object live in fast
//! memory for free. Kernels charge reads and writes of vector/matrix
//! streams as they move them — each charge is one *run* (one block
//! transfer) over that stream's nominal slow-memory span.
//!
//! The kernels are generic over [`IoSink`], which has two substrates:
//!
//! * [`IoTally`] — the hand-counted explicit model: word/message totals
//!   on a single fast↔slow boundary (the paper's `W12`), recorded through
//!   the batched [`Traffic`] API (so `msgs` means block transfers, not
//!   words);
//! * [`SimIo`] — the *same* run stream replayed through the multi-level
//!   cache simulator ([`memsim::MemSim`]): the `simmed` backend, whose
//!   line-granular write-backs the cross-model tests compare against the
//!   tally;
//! * [`StackIo`] — the run stream through the single-pass Mattson stack
//!   simulator ([`memsim::StackSim`]): the `stack` backend, projecting
//!   exact FA-LRU fills and write-backs for every capacity at once.

use memsim::{MemSim, StackSim};
use wa_core::{AccessRun, Traffic};

/// The charging surface the Krylov kernels drive. Addresses are *nominal*
/// slow-memory word spans (each vector/matrix stream owns a line-aligned
/// range); the tally ignores them, the simulator caches them.
pub trait IoSink {
    /// Charge one read run of `words` words starting at `addr`.
    fn read_at(&mut self, addr: usize, words: usize);
    /// Charge one write run of `words` words starting at `addr`.
    fn write_at(&mut self, addr: usize, words: usize);
    /// Charge `n` floating-point operations.
    fn flop(&mut self, n: usize);
    /// Charge a batch of access runs.
    fn run(&mut self, runs: &[AccessRun]) {
        for r in runs {
            if r.is_write {
                self.write_at(r.addr, r.words);
            } else {
                self.read_at(r.addr, r.words);
            }
        }
    }

    /// Mark a profiling phase boundary (see [`memsim::Probe`]). No-op on
    /// the tally; [`SimIo`] routes it to the simulator's probe.
    fn phase(&mut self, _name: &'static str) {}
}

/// Slow-memory traffic of a Krylov solve (the `W12` of the paper's §8),
/// kept as a one-boundary [`Traffic`]: `load_*` = reads from slow memory,
/// `store_*` = writes to slow memory.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoTally {
    /// Word and message counts across the fast↔slow boundary.
    pub traffic: Traffic,
    /// Floating-point operations.
    pub flops: u64,
}

impl IoTally {
    /// Charge one read run of `words` words from slow memory.
    pub fn read(&mut self, words: usize) {
        self.traffic.load_run(words as u64);
    }

    /// Charge one write run of `words` words to slow memory.
    pub fn write(&mut self, words: usize) {
        self.traffic.store_run(words as u64);
    }

    /// Charge a batch of access runs (the bulk API).
    pub fn run(&mut self, runs: &[AccessRun]) {
        self.traffic.run(runs);
    }

    /// Words read from slow memory.
    pub fn reads(&self) -> u64 {
        self.traffic.load_words
    }

    /// Words written to slow memory.
    pub fn writes(&self) -> u64 {
        self.traffic.store_words
    }

    pub fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    /// Writes per "CG-step equivalent" given `steps` conventional
    /// iterations' worth of progress.
    pub fn writes_per_step(&self, steps: usize) -> f64 {
        self.writes() as f64 / steps.max(1) as f64
    }
}

impl IoSink for IoTally {
    fn read_at(&mut self, _addr: usize, words: usize) {
        self.read(words);
    }

    fn write_at(&mut self, _addr: usize, words: usize) {
        self.write(words);
    }

    fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    fn run(&mut self, runs: &[AccessRun]) {
        self.traffic.run(runs);
    }
}

impl std::ops::AddAssign for IoTally {
    fn add_assign(&mut self, o: IoTally) {
        self.traffic += o.traffic;
        self.flops += o.flops;
    }
}

/// [`IoSink`] that replays the kernel's run stream through the cache
/// simulator — the Krylov `simmed` backend. Flush the simulator before
/// reporting so end-of-run dirty lines are charged.
pub struct SimIo {
    pub sim: MemSim,
    pub flops: u64,
}

impl SimIo {
    pub fn new(sim: MemSim) -> Self {
        SimIo { sim, flops: 0 }
    }
}

impl IoSink for SimIo {
    fn read_at(&mut self, addr: usize, words: usize) {
        self.sim.read_range(addr, words);
    }

    fn write_at(&mut self, addr: usize, words: usize) {
        self.sim.write_range(addr, words);
    }

    fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    fn run(&mut self, runs: &[AccessRun]) {
        self.sim.run(runs);
    }

    fn phase(&mut self, name: &'static str) {
        self.sim.phase(name);
    }
}

/// [`IoSink`] that feeds the kernel's run stream to the single-pass
/// Mattson stack simulator — the Krylov `stack` backend. No flush is
/// needed: [`StackSim::curve`] folds end-of-trace dirty state itself.
pub struct StackIo {
    pub sim: StackSim,
    pub flops: u64,
}

impl StackIo {
    pub fn new() -> Self {
        StackIo {
            sim: StackSim::new(),
            flops: 0,
        }
    }
}

impl Default for StackIo {
    fn default() -> Self {
        Self::new()
    }
}

impl IoSink for StackIo {
    fn read_at(&mut self, addr: usize, words: usize) {
        self.sim.read_range(addr, words);
    }

    fn write_at(&mut self, addr: usize, words: usize) {
        self.sim.write_range(addr, words);
    }

    fn flop(&mut self, n: usize) {
        self.flops += n as u64;
    }

    fn run(&mut self, runs: &[AccessRun]) {
        self.sim.run(runs);
    }

    fn phase(&mut self, name: &'static str) {
        self.sim.phase(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates() {
        let mut t = IoTally::default();
        t.read(10);
        t.write(4);
        t.flop(100);
        let mut u = IoTally::default();
        u.read(1);
        u += t;
        assert_eq!(u.reads(), 11);
        assert_eq!(u.writes(), 4);
        assert_eq!(u.flops, 100);
        assert_eq!(t.writes_per_step(2), 2.0);
    }

    #[test]
    fn each_charge_is_one_message() {
        let mut t = IoTally::default();
        t.read(1000);
        t.read(1000);
        t.write(500);
        t.read(0); // empty: not a transfer
        assert_eq!(t.traffic.load_msgs, 2);
        assert_eq!(t.traffic.store_msgs, 1);
        t.run(&[AccessRun::read(0, 8), AccessRun::write(8, 8)]);
        assert_eq!(t.traffic.load_msgs, 3);
        assert_eq!(t.traffic.store_msgs, 2);
        assert_eq!(t.reads(), 2008);
        assert_eq!(t.writes(), 508);
    }
}
