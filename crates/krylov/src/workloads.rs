//! Engine registrations for the Krylov solvers (Section 8).
//!
//! CG and CA-CG charge their slow-memory traffic through the [`IoSink`]
//! surface, which gives them two traffic-counting backends:
//!
//! * `explicit` — the hand-counted [`IoTally`] at vector granularity (the
//!   paper's `W12`): a [`wa_core::Traffic`] on a single fast↔slow
//!   boundary, one message per vector/matrix stream;
//! * `simmed` — the *same* run stream replayed through a stack of
//!   fully-associative true-LRU cache levels ([`SimIo`]); the fastest
//!   level is the scale's `M₁`, so the tally and the simulator's first
//!   boundary count the same writes (the cross-model check in
//!   `crates/bench/tests/backend_matrix.rs` asserts exact agreement).
//!   Depths 2 and 3 stack larger levels below `M₁` without changing the
//!   `M₁` boundary.
//!
//! `raw` runs the same solve and reports wall time only. The streaming
//! TSQR building block (§8's Arnoldi remark) registers the same way.

use crate::cacg::{ca_cg, CaCgOptions};
use crate::cg::{cg, SolveResult};
use crate::counter::{IoTally, SimIo, StackIo};
use crate::stencil::laplacian_2d;
use crate::tsqr::tsqr_r;
use memsim::xeon::XeonGeometry;
use memsim::{memsim_report, stack_report, MemSim, Policy};
use wa_core::engine::{BackendKind, EngineError, FnWorkload, RunCfg, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::{BoundaryTraffic, XorShift};

fn grid(scale: Scale) -> usize {
    match scale {
        Scale::Small => 24,
        Scale::Paper => 48,
    }
}

/// Fast-memory capacity `M₁` (words) of the Krylov models at `scale` —
/// the scale's L1, far below the vector length `n = grid²` (the §8
/// regime `n ≫ M₁`).
fn m1_words(scale: Scale) -> usize {
    XeonGeometry::for_scale(scale, Policy::Lru).l1_words
}

/// The `simmed` hierarchy: `depth` fully-associative true-LRU levels with
/// `M₁` on top. Deeper levels grow 8×/32× but stay below the problem
/// footprint, so every level still streams.
fn sim_hier(scale: Scale, depth: usize) -> MemSim {
    let m1 = m1_words(scale);
    let mults = [1usize, 8, 32];
    let caps: Vec<usize> = mults[..depth].iter().map(|&f| m1 * f).collect();
    MemSim::stacked_lru(&caps)
}

/// Project an [`IoTally`] onto a one-boundary report. The tally *is* a
/// [`wa_core::Traffic`] (words moved between the processor's working set
/// and slow memory, one message per vector/matrix stream), so the
/// projection is a straight copy.
fn tally_report(name: &str, scale: Scale, io: &IoTally, iters: usize, residual: f64) -> RunReport {
    let mut bt = BoundaryTraffic::new(2);
    *bt.boundary_mut(0) = io.traffic;
    let mut r = RunReport::new(name, BackendKind::Explicit, scale)
        .with_boundaries(&bt, &[])
        .config("iters", iters)
        .config("residual", format!("{residual:.3e}"))
        .note("IoTally projection: vector-granular runs, msgs == block transfers");
    r.flops = io.flops;
    r
}

/// Project a solver run through [`SimIo`] onto a report: flush, then let
/// the standard simulator adapter derive the boundary traffic.
fn sim_report(name: &str, scale: Scale, mut io: SimIo, iters: usize, residual: f64) -> RunReport {
    io.sim.flush();
    let mut r = memsim_report(
        &io.sim,
        RunReport::new(name, BackendKind::Simmed, scale)
            .config("iters", iters)
            .config("residual", format!("{residual:.3e}")),
    )
    .note("boundary 0 (fast side M1) is the tally's W12 boundary")
    .note("flushed: end-of-run dirty lines charged downward");
    r.flops = io.flops;
    r
}

/// Project a solver run through [`StackIo`] onto a report: the curve's
/// `M₁` projection is the report's one boundary, and the whole curve
/// rides along. No flush — [`memsim::StackSim::curve`] folds
/// end-of-trace dirty state itself.
fn stack_io_report(
    name: &str,
    scale: Scale,
    io: StackIo,
    iters: usize,
    residual: f64,
) -> RunReport {
    let mut r = stack_report(
        &io.sim,
        m1_words(scale),
        RunReport::new(name, BackendKind::Stack, scale)
            .config("iters", iters)
            .config("residual", format!("{residual:.3e}")),
    );
    r.flops = io.flops;
    r
}

fn check_converged(name: &str, res: &SolveResult) -> Result<(), EngineError> {
    if res.residual > 1e-6 {
        return Err(EngineError::Failed {
            workload: name.to_string(),
            message: format!("solver stagnated: residual {:.3e}", res.residual),
        });
    }
    Ok(())
}

fn solver_workload(
    name: &'static str,
    description: &'static str,
    opts: Option<CaCgOptions>, // None = plain CG
) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Explicit,
        BackendKind::Simmed,
        BackendKind::Stack,
    ];
    let depths = [(BackendKind::Simmed, 3)];
    FnWorkload::boxed_sized(
        name,
        "krylov",
        description,
        &backends,
        &depths,
        // 5-point Laplacian in CSR (~5 nnz/row at 16 B each) plus the
        // handful of g²-length CG work vectors, with slack.
        |scale, _| {
            let g = grid(scale) as u64;
            g * g * 200
        },
        move |RunCfg {
                  backend,
                  scale,
                  depth,
                  ..
              }| {
            let g = grid(scale);
            let a = laplacian_2d(g, g, 0.1);
            let b = vec![1.0; a.rows];
            let x0 = vec![0.0; a.rows];
            match backend {
                BackendKind::Raw | BackendKind::Explicit => {
                    let mut io = IoTally::default();
                    let (res, ns) = timed(|| match &opts {
                        None => cg(&a, &b, &x0, 1e-10, 4 * g * g, &mut io),
                        Some(o) => ca_cg(&a, &b, &x0, o, &mut io),
                    });
                    check_converged(name, &res)?;
                    let mut r = if backend == BackendKind::Explicit {
                        tally_report(name, scale, &io, res.iters, res.residual)
                    } else {
                        RunReport::new(name, backend, scale)
                            .config("iters", res.iters)
                            .config("residual", format!("{:.3e}", res.residual))
                    };
                    r = r.config("grid", format!("{g}x{g}"));
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Simmed => {
                    let mut io = SimIo::new(sim_hier(scale, depth));
                    let (res, ns) = timed(|| match &opts {
                        None => cg(&a, &b, &x0, 1e-10, 4 * g * g, &mut io),
                        Some(o) => ca_cg(&a, &b, &x0, o, &mut io),
                    });
                    check_converged(name, &res)?;
                    let mut r = sim_report(name, scale, io, res.iters, res.residual)
                        .config("grid", format!("{g}x{g}"))
                        .config("depth", depth);
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Stack => {
                    let mut io = StackIo::new();
                    let (res, ns) = timed(|| match &opts {
                        None => cg(&a, &b, &x0, 1e-10, 4 * g * g, &mut io),
                        Some(o) => ca_cg(&a, &b, &x0, o, &mut io),
                    });
                    check_converged(name, &res)?;
                    let mut r = stack_io_report(name, scale, io, res.iters, res.residual)
                        .config("grid", format!("{g}x{g}"));
                    r.wall_ns = ns;
                    Ok(r)
                }
                other => Err(EngineError::UnsupportedBackend {
                    workload: name.to_string(),
                    backend: other,
                    supported: backends.to_vec(),
                }),
            }
        },
    )
}

/// Streaming / storing tall-skinny QR (the §8 Arnoldi building block):
/// `nblocks` row blocks of 64×8, blocks regenerated on demand.
fn tsqr_workload(name: &'static str, description: &'static str, store: bool) -> Box<dyn Workload> {
    let backends = [
        BackendKind::Raw,
        BackendKind::Explicit,
        BackendKind::Simmed,
        BackendKind::Stack,
    ];
    let depths = [(BackendKind::Simmed, 3)];
    FnWorkload::boxed_sized(
        name,
        "krylov",
        description,
        &backends,
        &depths,
        // Worst case (storing variant): every 64×8 row block resident
        // plus Q/R factors — 3× the raw block storage covers both modes.
        |scale, _| {
            let nblocks: u64 = match scale {
                Scale::Small => 16,
                Scale::Paper => 64,
            };
            3 * nblocks * 64 * 8 * 8
        },
        move |RunCfg {
                  backend,
                  scale,
                  depth,
                  ..
              }| {
            let s = 8usize;
            let rpb = 64usize;
            let nblocks = match scale {
                Scale::Small => 16,
                Scale::Paper => 64,
            };
            // Deterministic, recomputable row blocks (the streaming
            // premise: the generator can replay any block).
            let gen = |b: usize| {
                let mut rng = XorShift::new(97 + b as u64);
                (0..rpb * s).map(|_| rng.next_unit() - 0.5).collect()
            };
            let base = |backend| {
                RunReport::new(name, backend, scale)
                    .config("n", nblocks * rpb)
                    .config("s", s)
                    .config("store", store)
            };
            match backend {
                BackendKind::Raw => {
                    let mut io = IoTally::default();
                    let (_, ns) = timed(|| tsqr_r(nblocks, rpb, s, gen, store, &mut io));
                    let mut r = base(backend);
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Explicit => {
                    let mut io = IoTally::default();
                    let (_, ns) = timed(|| tsqr_r(nblocks, rpb, s, gen, store, &mut io));
                    let mut bt = BoundaryTraffic::new(2);
                    *bt.boundary_mut(0) = io.traffic;
                    let mut r = base(backend).with_boundaries(&bt, &[]);
                    r.flops = io.flops;
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Simmed => {
                    let mut io = SimIo::new(sim_hier(scale, depth));
                    let (_, ns) = timed(|| tsqr_r(nblocks, rpb, s, gen, store, &mut io));
                    io.sim.flush();
                    let mut r = memsim_report(&io.sim, base(backend))
                        .config("depth", depth)
                        .note("boundary 0 (fast side M1) is the tally's boundary");
                    r.flops = io.flops;
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Stack => {
                    let mut io = StackIo::new();
                    let (_, ns) = timed(|| tsqr_r(nblocks, rpb, s, gen, store, &mut io));
                    let mut r = stack_report(&io.sim, m1_words(scale), base(backend));
                    r.flops = io.flops;
                    r.wall_ns = ns;
                    Ok(r)
                }
                other => Err(EngineError::UnsupportedBackend {
                    workload: name.to_string(),
                    backend: other,
                    supported: backends.to_vec(),
                }),
            }
        },
    )
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        solver_workload(
            "cg",
            "conjugate gradients: ~4n slow-memory writes per iteration (8.1)",
            None,
        ),
        solver_workload(
            "ca-cg",
            "s-step CA-CG with stored basis: fewer write phases per s steps",
            Some(CaCgOptions {
                streaming: false,
                ..CaCgOptions::default()
            }),
        ),
        solver_workload(
            "ca-cg-streaming",
            "streaming CA-CG: basis recomputed, writes ~2n per s steps (8.3)",
            Some(CaCgOptions {
                streaming: true,
                ..CaCgOptions::default()
            }),
        ),
        tsqr_workload(
            "tsqr-stream",
            "streaming TSQR: row blocks regenerated, only the s*s R factor is written (8)",
            false,
        ),
        tsqr_workload(
            "tsqr-store",
            "storing TSQR: row blocks written back, Theta(n*s) writes",
            true,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_krylov_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn simmed_m1_boundary_writes_equal_the_tally_at_every_depth() {
        for w in workloads() {
            let exp = w.run(BackendKind::Explicit, Scale::Small).unwrap();
            for depth in 1..=w.max_depth(BackendKind::Simmed) {
                let sim = w
                    .run_cfg(RunCfg::with_depth(BackendKind::Simmed, Scale::Small, depth))
                    .unwrap();
                assert_eq!(sim.boundaries.len(), depth, "{}", w.name());
                assert_eq!(
                    exp.boundaries[0].store_words,
                    sim.boundaries[0].store_words,
                    "{} depth {depth}: tally vs simulated M1-boundary writes",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn stack_m1_projection_agrees_with_depth1_simmed() {
        for w in workloads() {
            let sim = w.run(BackendKind::Simmed, Scale::Small).unwrap();
            let stk = w.run(BackendKind::Stack, Scale::Small).unwrap();
            assert_eq!(
                sim.boundaries[0],
                stk.boundaries[0],
                "{}: stack curve at M1 must equal the flushed simulator",
                w.name()
            );
            assert!(
                stk.curve.is_some(),
                "{} stack run carries a curve",
                w.name()
            );
        }
    }

    #[test]
    fn streaming_cacg_writes_fewer_words_than_cg() {
        let ws = workloads();
        let get = |n: &str| {
            ws.iter()
                .find(|w| w.name() == n)
                .unwrap()
                .run(BackendKind::Explicit, Scale::Small)
                .unwrap()
        };
        let cg = get("cg");
        let st = get("ca-cg-streaming");
        // Normalize by conventional iterations (echoed in config).
        let iters = |r: &RunReport| {
            r.config
                .iter()
                .find(|(k, _)| k == "iters")
                .unwrap()
                .1
                .parse::<f64>()
                .unwrap()
        };
        let wps_cg = cg.writes_to_slow() as f64 / iters(&cg);
        let wps_st = st.writes_to_slow() as f64 / iters(&st);
        assert!(
            wps_st < wps_cg,
            "streaming CA-CG writes/step {wps_st} !< CG {wps_cg}"
        );
    }
}
