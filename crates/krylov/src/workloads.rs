//! Engine registrations for the Krylov solvers (Section 8).
//!
//! CG and CA-CG count their slow-memory traffic through [`IoTally`] — an
//! explicit (hand-counted) model at vector granularity, so they register
//! the `explicit` backend: the tally is a [`wa_core::Traffic`] on a single
//! L1/L2-style boundary (the paper's `W12`), with one message per
//! vector/matrix stream. `raw` runs the same solve and reports wall time
//! only.

use crate::cacg::{ca_cg, CaCgOptions};
use crate::cg::cg;
use crate::counter::IoTally;
use crate::stencil::laplacian_2d;
use wa_core::engine::{BackendKind, EngineError, FnWorkload, Scale, Workload};
use wa_core::report::{timed, RunReport};
use wa_core::BoundaryTraffic;

fn grid(scale: Scale) -> usize {
    match scale {
        Scale::Small => 24,
        Scale::Paper => 48,
    }
}

/// Project an [`IoTally`] onto a one-boundary report. The tally *is* a
/// [`wa_core::Traffic`] (words moved between the processor's working set and slow
/// memory, one message per vector/matrix stream), so the projection is a
/// straight copy.
fn tally_report(name: &str, scale: Scale, io: &IoTally, iters: usize, residual: f64) -> RunReport {
    let mut bt = BoundaryTraffic::new(2);
    *bt.boundary_mut(0) = io.traffic;
    let mut r = RunReport::new(name, BackendKind::Explicit, scale)
        .with_boundaries(&bt, &[])
        .config("iters", iters)
        .config("residual", format!("{residual:.3e}"))
        .note("IoTally projection: vector-granular runs, msgs == block transfers");
    r.flops = io.flops;
    r
}

fn solver_workload(
    name: &'static str,
    description: &'static str,
    opts: Option<CaCgOptions>, // None = plain CG
) -> Box<dyn Workload> {
    let backends = [BackendKind::Raw, BackendKind::Explicit];
    FnWorkload::boxed(
        name,
        "krylov",
        description,
        &backends,
        move |backend, scale| {
            let g = grid(scale);
            let a = laplacian_2d(g, g, 0.1);
            let b = vec![1.0; a.rows];
            let x0 = vec![0.0; a.rows];
            let mut io = IoTally::default();
            let (res, ns) = timed(|| match &opts {
                None => cg(&a, &b, &x0, 1e-10, 4 * g * g, &mut io),
                Some(o) => ca_cg(&a, &b, &x0, o, &mut io),
            });
            if res.residual > 1e-6 {
                return Err(EngineError::Failed {
                    workload: name.to_string(),
                    message: format!("solver stagnated: residual {:.3e}", res.residual),
                });
            }
            match backend {
                BackendKind::Raw => {
                    let mut r = RunReport::new(name, backend, scale)
                        .config("grid", format!("{g}x{g}"))
                        .config("iters", res.iters)
                        .config("residual", format!("{:.3e}", res.residual));
                    r.wall_ns = ns;
                    Ok(r)
                }
                BackendKind::Explicit => {
                    let mut r = tally_report(name, scale, &io, res.iters, res.residual)
                        .config("grid", format!("{g}x{g}"));
                    r.wall_ns = ns;
                    Ok(r)
                }
                other => Err(EngineError::UnsupportedBackend {
                    workload: name.to_string(),
                    backend: other,
                    supported: backends.to_vec(),
                }),
            }
        },
    )
}

pub fn workloads() -> Vec<Box<dyn Workload>> {
    vec![
        solver_workload(
            "cg",
            "conjugate gradients: ~4n slow-memory writes per iteration (8.1)",
            None,
        ),
        solver_workload(
            "ca-cg",
            "s-step CA-CG with stored basis: fewer write phases per s steps",
            Some(CaCgOptions {
                streaming: false,
                ..CaCgOptions::default()
            }),
        ),
        solver_workload(
            "ca-cg-streaming",
            "streaming CA-CG: basis recomputed, writes ~2n per s steps (8.3)",
            Some(CaCgOptions {
                streaming: true,
                ..CaCgOptions::default()
            }),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_krylov_workload_runs_on_each_declared_backend() {
        for w in workloads() {
            for &b in w.backends() {
                w.run(b, Scale::Small)
                    .unwrap_or_else(|e| panic!("{} on {b}: {e}", w.name()));
            }
        }
    }

    #[test]
    fn streaming_cacg_writes_fewer_words_than_cg() {
        let ws = workloads();
        let get = |n: &str| {
            ws.iter()
                .find(|w| w.name() == n)
                .unwrap()
                .run(BackendKind::Explicit, Scale::Small)
                .unwrap()
        };
        let cg = get("cg");
        let st = get("ca-cg-streaming");
        // Normalize by conventional iterations (echoed in config).
        let iters = |r: &RunReport| {
            r.config
                .iter()
                .find(|(k, _)| k == "iters")
                .unwrap()
                .1
                .parse::<f64>()
                .unwrap()
        };
        let wps_cg = cg.writes_to_slow() as f64 / iters(&cg);
        let wps_st = st.writes_to_slow() as f64 / iters(&st);
        assert!(
            wps_st < wps_cg,
            "streaming CA-CG writes/step {wps_st} !< CG {wps_cg}"
        );
    }
}
