//! Tall-skinny QR (TSQR) with a streaming, write-avoiding mode.
//!
//! The last paragraph of §8: for Arnoldi-based s-step KSMs, the Gram
//! matrix computation is replaced by a tall-skinny QR factorization,
//! "which can be interleaved with the matrix powers computation in a
//! similar manner". This module provides that building block:
//!
//! * [`tsqr_r`] — the R factor of an `n×s` matrix via block-row local
//!   Householder QRs and a sequential R-combining reduction. In
//!   **streaming** mode each row block is consumed and discarded
//!   (provided by a closure — e.g. the matrix powers kernel regenerating
//!   basis rows), so slow-memory writes are O(s²) instead of O(n·s);
//! * [`householder_qr_r`] — the dense local kernel (also usable
//!   standalone).
//!
//! Verified against the Cholesky identity `RᵀR = AᵀA` and Q-lessness is
//! compensated by the reproducibility of the generator (exactly like
//! streaming matrix powers recomputes the basis).

use crate::counter::IoSink;
use memsim::LINE_WORDS;

/// In-place Householder QR of an `r×c` row-major block (`r ≥ c` not
/// required); returns the `c×c` upper-triangular R (row-major).
pub fn householder_qr_r(a: &mut [f64], r: usize, c: usize) -> Vec<f64> {
    assert_eq!(a.len(), r * c);
    for k in 0..c.min(r.saturating_sub(1)) {
        // Build the Householder reflector for column k below row k.
        let mut norm2 = 0.0;
        for i in k..r {
            norm2 += a[i * c + k] * a[i * c + k];
        }
        let norm = norm2.sqrt();
        if norm == 0.0 {
            continue;
        }
        let akk = a[k * c + k];
        let alpha = if akk >= 0.0 { -norm } else { norm };
        // v = x - alpha e1 (stored over the column), normalized so v[k]=1.
        let vkk = akk - alpha;
        if vkk == 0.0 {
            continue;
        }
        for i in k + 1..r {
            a[i * c + k] /= vkk;
        }
        let beta = -vkk / alpha; // 2/vᵀv with this scaling
        a[k * c + k] = alpha;
        // Apply I - beta v vᵀ to the trailing columns.
        for j in k + 1..c {
            let mut dot = a[k * c + j];
            for i in k + 1..r {
                dot += a[i * c + k] * a[i * c + j];
            }
            let s = beta * dot;
            a[k * c + j] -= s;
            for i in k + 1..r {
                a[i * c + j] -= s * a[i * c + k];
            }
        }
        // Zero the column below the diagonal (we only keep R).
        // (The reflector vector is discarded; Q is not materialized.)
    }
    let mut rmat = vec![0.0; c * c];
    for i in 0..c.min(r) {
        for j in i..c {
            rmat[i * c + j] = a[i * c + j];
        }
    }
    rmat
}

/// TSQR over `nblocks` row blocks of `rows_per_block × s`, produced on
/// demand by `gen(block_index) -> Vec<f64>` (row-major). Sequential
/// R-combining: R ← qr([R_prev; R_block]). In streaming mode (`store =
/// false`) blocks are discarded after use and only O(s²) state persists;
/// with `store = true` the blocks are also written back to slow memory
/// (the non-WA baseline, counted in `io`).
pub fn tsqr_r<S: IoSink>(
    nblocks: usize,
    rows_per_block: usize,
    s: usize,
    mut gen: impl FnMut(usize) -> Vec<f64>,
    store: bool,
    io: &mut S,
) -> Vec<f64> {
    assert!(nblocks >= 1 && s >= 1);
    // Nominal layout: row block b owns the span starting at b·rpb·s; the
    // O(s²) R factor lives after the last block (line-aligned).
    let bwords = rows_per_block * s;
    let v_r = (nblocks * bwords).div_ceil(LINE_WORDS) * LINE_WORDS;
    let mut r_acc: Option<Vec<f64>> = None;
    for b in 0..nblocks {
        let block = gen(b);
        assert_eq!(block.len(), bwords);
        io.read_at(b * bwords, bwords); // the generator's rows stream in
        if store {
            io.write_at(b * bwords, bwords); // non-streaming: basis stored
        }
        let r_new = match r_acc.take() {
            None => {
                let mut work = block;
                householder_qr_r(&mut work, rows_per_block, s)
            }
            Some(prev) => {
                // Stack [R_prev; block] and re-factor.
                let rows = s + rows_per_block;
                let mut work = vec![0.0; rows * s];
                work[..s * s].copy_from_slice(&prev);
                work[s * s..].copy_from_slice(&block);
                householder_qr_r(&mut work, rows, s)
            }
        };
        io.flop(2 * rows_per_block * s * s);
        r_acc = Some(r_new);
    }
    let r = r_acc.expect("at least one block");
    io.write_at(v_r, s * s); // only the O(s²) R factor leaves fast memory
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::IoTally;
    use wa_core::{Mat, XorShift};

    fn rtr(r: &[f64], s: usize) -> Mat {
        let rm = Mat::from_fn(s, s, |i, j| r[i * s + j]);
        rm.transpose().matmul_ref(&rm)
    }

    fn ata(a: &Mat) -> Mat {
        a.transpose().matmul_ref(a)
    }

    #[test]
    fn local_qr_satisfies_cholesky_identity() {
        let (r, c) = (40, 5);
        let a = Mat::random(r, c, 81);
        let mut work: Vec<f64> = a.as_slice().to_vec();
        let rfac = householder_qr_r(&mut work, r, c);
        let lhs = rtr(&rfac, c);
        let rhs = ata(&a);
        assert!(lhs.max_abs_diff(&rhs) < 1e-10, "{}", lhs.max_abs_diff(&rhs));
        // R upper triangular.
        for i in 0..c {
            for j in 0..i {
                assert_eq!(rfac[i * c + j], 0.0);
            }
        }
    }

    #[test]
    fn tsqr_matches_direct_qr() {
        let (nb, rpb, s) = (8, 16, 4);
        let n = nb * rpb;
        let a = Mat::random(n, s, 82);
        let mut io = IoTally::default();
        let r = tsqr_r(
            nb,
            rpb,
            s,
            |b| {
                let mut v = Vec::with_capacity(rpb * s);
                for i in 0..rpb {
                    for j in 0..s {
                        v.push(a[(b * rpb + i, j)]);
                    }
                }
                v
            },
            false,
            &mut io,
        );
        let lhs = rtr(&r, s);
        let rhs = ata(&a);
        assert!(lhs.max_abs_diff(&rhs) < 1e-9, "{}", lhs.max_abs_diff(&rhs));
    }

    #[test]
    fn streaming_tsqr_writes_only_r() {
        let (nb, rpb, s) = (32, 64, 6);
        let a = Mat::random(nb * rpb, s, 83);
        let run = |store: bool| {
            let mut io = IoTally::default();
            let _ = tsqr_r(
                nb,
                rpb,
                s,
                |b| {
                    let mut v = Vec::with_capacity(rpb * s);
                    for i in 0..rpb {
                        for j in 0..s {
                            v.push(a[(b * rpb + i, j)]);
                        }
                    }
                    v
                },
                store,
                &mut io,
            );
            io
        };
        let streaming = run(false);
        let storing = run(true);
        assert_eq!(
            streaming.writes(),
            (s * s) as u64,
            "only R leaves fast memory"
        );
        assert_eq!(
            storing.writes(),
            (nb * rpb * s + s * s) as u64,
            "storing pays Θ(n·s)"
        );
        assert_eq!(streaming.reads(), storing.reads());
    }

    #[test]
    fn rank_deficient_and_tiny_inputs() {
        // A column of zeros must not break the reflector construction.
        let (r, c) = (10, 3);
        let mut rng = XorShift::new(84);
        let a = Mat::from_fn(r, c, |_, j| if j == 1 { 0.0 } else { rng.next_unit() });
        let mut work: Vec<f64> = a.as_slice().to_vec();
        let rfac = householder_qr_r(&mut work, r, c);
        assert!(rtr(&rfac, c).max_abs_diff(&ata(&a)) < 1e-10);
        // 1×1.
        let mut one = vec![3.0];
        let rf = householder_qr_r(&mut one, 1, 1);
        assert!((rf[0].abs() - 3.0).abs() < 1e-15);
    }
}
