//! Umbrella crate re-exporting the write-avoiding workspace members so the
//! examples and integration tests can use a single dependency.
pub use cdag;
pub use dense;
pub use extsort;
pub use krylov;
pub use memsim;
pub use nbody;
pub use parallel;
pub use wa_core;
