//! Property-based tests (proptest) on the core invariants.

use proptest::prelude::*;
use write_avoiding::dense::desc::alloc_layout;
use write_avoiding::dense::matmul::{blocked_matmul, co_matmul, LoopOrder};
use write_avoiding::dense::trsm::{blocked_trsm, TrsmVariant};
use write_avoiding::memsim::ideal::simulate_belady;
use write_avoiding::memsim::mem::Access;
use write_avoiding::memsim::{CacheConfig, Mem, MemSim, Policy, RawMem, SimMem};
use write_avoiding::wa_core::Mat;

fn order_strategy() -> impl Strategy<Value = LoopOrder> {
    prop::sample::select(LoopOrder::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every loop order and block size computes the same product.
    #[test]
    fn blocked_matmul_correct_for_all_shapes(
        m in 1usize..20,
        n in 1usize..20,
        l in 1usize..20,
        bsize in 1usize..9,
        order in order_strategy(),
        seed in 0u64..1000,
    ) {
        let a = Mat::random(m, n, seed);
        let b = Mat::random(n, l, seed + 1);
        let (d, words) = alloc_layout(&[(m, n), (n, l), (m, l)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, order);
        let got = d[2].load_mat(&mut mem);
        prop_assert!(got.max_abs_diff(&a.matmul_ref(&b)) < 1e-9);
    }

    /// Cache-oblivious recursion agrees with the blocked algorithm.
    #[test]
    fn co_matmul_matches_blocked(
        n in 1usize..24,
        base in 1usize..8,
        seed in 0u64..1000,
    ) {
        let a = Mat::random(n, n, seed);
        let b = Mat::random(n, n, seed + 9);
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        co_matmul(&mut mem, d[0], d[1], d[2], base);
        let got = d[2].load_mat(&mut mem);
        prop_assert!(got.max_abs_diff(&a.matmul_ref(&b)) < 1e-9);
    }

    /// TRSM actually solves the system for both variants.
    #[test]
    fn trsm_residual_is_small(
        nb in 1usize..5,
        rhs_cols in 1usize..12,
        right_looking in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let n = nb * 4;
        let t = Mat::random_upper_triangular(n, seed);
        let x = Mat::random(n, rhs_cols, seed + 1);
        let b = t.matmul_ref(&x);
        let (d, words) = alloc_layout(&[(n, n), (n, rhs_cols)]);
        let mut mem = RawMem::new(words);
        d[0].store_mat(&mut mem, &t);
        d[1].store_mat(&mut mem, &b);
        let v = if right_looking { TrsmVariant::RightLooking } else { TrsmVariant::WriteAvoiding };
        blocked_trsm(&mut mem, d[0], d[1], 4, v);
        let got = d[1].load_mat(&mut mem);
        prop_assert!(got.max_abs_diff(&x) < 1e-7);
    }

    /// Belady is optimal: never more misses than LRU on any trace.
    #[test]
    fn belady_never_beaten_by_lru(
        trace_spec in prop::collection::vec((0usize..512, any::<bool>()), 1..400),
        cap_lines in 2usize..16,
    ) {
        let trace: Vec<Access> = trace_spec
            .iter()
            .map(|&(addr, is_write)| Access { addr, is_write })
            .collect();
        let bel = simulate_belady(&trace, cap_lines, 8);
        let mut lru = MemSim::two_level(CacheConfig {
            capacity_words: cap_lines * 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        });
        for a in &trace {
            if a.is_write { lru.write(a.addr) } else { lru.read(a.addr) }
        }
        prop_assert!(bel.misses <= lru.llc().misses);
        // Conservation on both: hits + misses = accesses.
        prop_assert_eq!(bel.hits + bel.misses, trace.len() as u64);
        let c = lru.llc();
        prop_assert_eq!(c.hits + c.misses, trace.len() as u64);
    }

    /// Cache-simulator conservation laws on random access streams:
    /// fills = misses (write-allocate), victims <= fills, and dirty
    /// write-backs never exceed the number of written lines.
    #[test]
    fn simulator_conservation_laws(
        trace_spec in prop::collection::vec((0usize..2048, any::<bool>()), 1..600),
        cap_lines in 2usize..32,
    ) {
        let cfg = CacheConfig {
            capacity_words: cap_lines * 8,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut sim = MemSim::two_level(cfg);
        let mut written_lines = std::collections::HashSet::new();
        for &(addr, is_write) in &trace_spec {
            if is_write {
                sim.write(addr);
                written_lines.insert(addr / 8);
            } else {
                sim.read(addr);
            }
        }
        sim.flush();
        let c = sim.llc();
        prop_assert_eq!(c.fills, c.misses);
        prop_assert!(c.victims() <= c.fills);
        prop_assert!(sim.dram_writes_lines <= c.fills);
        // Every DRAM write-back corresponds to a line that was written.
        prop_assert!(sim.dram_writes_lines <= written_lines.len() as u64 * (1 + c.fills / cap_lines as u64));
        prop_assert_eq!(sim.dram_reads_lines, c.fills);
    }

    /// SimMem and RawMem are observationally identical on the data plane.
    #[test]
    fn sim_and_raw_memories_agree(
        ops in prop::collection::vec((0usize..256, -100.0f64..100.0, any::<bool>()), 1..200),
    ) {
        let cfg = CacheConfig {
            capacity_words: 64,
            line_words: 8,
            ways: 0,
            policy: Policy::Lru,
        };
        let mut raw = RawMem::new(256);
        let mut sim = SimMem::new(256, MemSim::two_level(cfg));
        for &(addr, val, is_write) in &ops {
            if is_write {
                raw.st(addr, val);
                sim.st(addr, val);
            } else {
                prop_assert_eq!(raw.ld(addr), sim.ld(addr));
            }
        }
        prop_assert_eq!(raw.data, sim.data);
    }
}
