//! Integration: every parallel algorithm computes the same answer as the
//! sequential references, and the measured traffic sits on the right side
//! of the Section 7 bounds.

use write_avoiding::dense::desc::alloc_layout;
use write_avoiding::dense::lu::{blocked_lu, LuVariant};
use write_avoiding::memsim::RawMem;
use write_avoiding::parallel::cannon::cannon;
use write_avoiding::parallel::lu::{parallel_lu, LunpVariant};
use write_avoiding::parallel::machine::{Machine, Staging};
use write_avoiding::parallel::mm25d::{mm25d, Mm25Config};
use write_avoiding::parallel::summa::{summa, summa_l3_ool2};
use write_avoiding::wa_core::{bounds, CostParams, Mat};

#[test]
fn all_parallel_matmuls_agree_with_reference() {
    let n = 36;
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, n, 2);
    let want = a.matmul_ref(&b);

    let mut m = Machine::new(9, CostParams::nvm_cluster());
    assert!(summa(&mut m, &a, &b, 3, 6, Staging::L2).max_abs_diff(&want) < 1e-10);

    let mut m = Machine::new(9, CostParams::nvm_cluster());
    assert!(cannon(&mut m, &a, &b, 3, Staging::L2).max_abs_diff(&want) < 1e-10);

    let mut m = Machine::new(9, CostParams::nvm_cluster());
    assert!(summa_l3_ool2(&mut m, &a, &b, 3, 48).max_abs_diff(&want) < 1e-10);

    for (p, c) in [(9usize, 1usize), (18, 2)] {
        let q = ((p / c) as f64).sqrt().round() as usize;
        if q * q * c != p || n % q != 0 {
            continue;
        }
        let mut m = Machine::new(p, CostParams::nvm_cluster());
        let got = mm25d(
            &mut m,
            &a,
            &b,
            Mm25Config {
                p,
                c,
                at: Staging::L3,
                ool2: false,
                m2: 48,
            },
        );
        assert!(got.max_abs_diff(&want) < 1e-10, "p={p} c={c}");
    }
}

#[test]
fn parallel_lu_matches_sequential_blocked_lu() {
    let n = 32;
    let mut a0 = Mat::random(n, n, 3);
    for i in 0..n {
        a0[(i, i)] = a0[(i, i)].abs() + n as f64;
    }
    // Sequential reference via the dense crate.
    let (d, words) = alloc_layout(&[(n, n)]);
    let mut mem = RawMem::new(words);
    d[0].store_mat(&mut mem, &a0);
    blocked_lu(&mut mem, d[0], 4, LuVariant::RightLooking);
    let seq = d[0].load_mat(&mut mem);

    for v in [LunpVariant::LeftLooking, LunpVariant::RightLooking] {
        let mut a = a0.clone();
        let mut m = Machine::new(16, CostParams::nvm_cluster());
        parallel_lu(&mut m, &mut a, 4, v);
        assert!(
            a.max_abs_diff(&seq) < 1e-9,
            "{v:?} differs from sequential by {}",
            a.max_abs_diff(&seq)
        );
    }
}

#[test]
fn interprocessor_words_respect_w2_bound() {
    // The CA lower bound W2 = n²/√(Pc) must undercut any correct run.
    let n = 64;
    let p = 16;
    let a = Mat::random(n, n, 4);
    let b = Mat::random(n, n, 5);
    let mut m = Machine::new(p, CostParams::nvm_cluster());
    let _ = summa(&mut m, &a, &b, 4, 16, Staging::L2);
    let w2 = bounds::parallel_matmul_bounds(n as u64, p as u64, 1, 1024).w2_interproc_words;
    let measured = m.max_counters().net_recv_words as f64;
    assert!(
        measured >= 0.9 * w2,
        "measured {measured} below the W2 bound {w2}?!"
    );
}

#[test]
fn theorem4_no_algorithm_attains_both_bounds() {
    // Directly check both Model 2.2 algorithms against W1 and W2.
    let n = 48;
    let p = 16;
    let a = Mat::random(n, n, 6);
    let b = Mat::random(n, n, 7);
    let w1 = (n * n / p) as u64;
    let w2 = ((n * n) as f64 / (p as f64).sqrt()) as u64;

    let mut mo = Machine::new(p, CostParams::nvm_cluster());
    let _ = mm25d(
        &mut mo,
        &a,
        &b,
        Mm25Config {
            p,
            c: 1,
            at: Staging::L3,
            ool2: true,
            m2: 48,
        },
    );
    let ool2 = mo.max_counters();
    let mut ms = Machine::new(p, CostParams::nvm_cluster());
    let _ = summa_l3_ool2(&mut ms, &a, &b, 4, 48);
    let sm = ms.max_counters();

    // ooL2 2.5D: near-W2 network, far-above-W1 writes.
    assert!(ool2.net_recv_words < 4 * w2);
    assert!(ool2.l3_write_words > 2 * w1);
    // SUMMA: exactly-W1 writes, far-above-W2 network.
    assert_eq!(sm.l3_write_words, w1);
    assert!(sm.net_recv_words > 2 * w2);
}
