//! Cross-crate integration tests: each one exercises at least two
//! workspace crates against a paper-level claim.

use write_avoiding::cdag::fft::{dft_reference, fft_mem, Complex};
use write_avoiding::dense::desc::alloc_layout;
use write_avoiding::dense::matmul::{blocked_matmul, co_matmul, LoopOrder};
use write_avoiding::memsim::{CacheConfig, Mem, MemSim, Policy, SimMem};
use write_avoiding::wa_core::{bounds, Mat};

fn lru(words: usize) -> CacheConfig {
    CacheConfig {
        capacity_words: words,
        line_words: 8,
        ways: 0,
        policy: Policy::Lru,
    }
}

/// Dense kernel + cache simulator + bounds: the WA matmul's measured
/// write-backs attain the output-size bound while total traffic respects
/// the Hong–Kung-style load/store bound.
#[test]
fn wa_matmul_attains_both_bounds_in_the_simulator() {
    // Block size a multiple of the line size and dividing n, so block
    // boundaries align with cache lines (otherwise shared edge lines are
    // written more than once and the count exceeds the bound slightly).
    let n = 80;
    let m_words = 5 * 16 * 16 + 8; // five 16×16 blocks + one line (Prop 6.1)
    let cfg = lru(m_words);
    let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
    let mut mem = SimMem::new(words, MemSim::two_level(cfg));
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, n, 2);
    d[0].store_mat(&mut mem, &a);
    d[1].store_mat(&mut mem, &b);
    let data = std::mem::take(&mut mem.data);
    let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
    blocked_matmul(&mut mem, d[0], d[1], d[2], 16, LoopOrder::Ijk);
    mem.sim.flush();

    // Numerics.
    let got = d[2].load_mat(&mut mem);
    assert!(got.max_abs_diff(&a.matmul_ref(&b)) < 1e-10);

    // Writes == output size exactly (in lines).
    let c = mem.sim.llc();
    assert_eq!(c.victims_m + c.flush_victims_m, (n * n / 8) as u64);

    // Total traffic respects the load/store lower bound.
    let total_words = (c.fills + c.victims_m + c.flush_victims_m) * 8;
    let lb = bounds::matmul_ldst_lower(n as u64, n as u64, n as u64, m_words as u64);
    assert!(
        total_words as f64 > lb,
        "traffic {total_words} below bound {lb}"
    );
}

/// Theorem 3 across crates: the cache-oblivious order cannot be WA at any
/// cache size — its write-backs grow as the cache shrinks, unlike the
/// blocked WA order which re-blocks to stay at the output size.
#[test]
fn co_vs_wa_write_scaling_with_cache_size() {
    let n = 64;
    let run = |words: usize, co: bool| -> u64 {
        let cfg = lru(words);
        let (d, total) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = SimMem::new(total, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &Mat::random(n, n, 1));
        d[1].store_mat(&mut mem, &Mat::random(n, n, 2));
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        if co {
            co_matmul(&mut mem, d[0], d[1], d[2], 8);
        } else {
            // Largest line-aligned block with five copies resident.
            let bsize = (((words / 5) as f64).sqrt() as usize / 8 * 8).max(8);
            blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, LoopOrder::Ijk);
        }
        mem.sim.flush();
        let c = mem.sim.llc();
        c.victims_m + c.flush_victims_m
    };
    let out_lines = (n * n / 8) as u64;
    for words in [512usize, 2048] {
        let wa = run(words, false);
        let co = run(words, true);
        assert!(wa <= out_lines + out_lines / 8, "WA at M={words}: {wa}");
        assert!(co >= 2 * wa, "CO at M={words}: {co} vs WA {wa}");
    }
    // CO writes grow as the cache shrinks (Theorem 3's M' < M/(64c²)).
    assert!(run(512, true) > run(2048, true));
}

/// FFT + bounds: writes obey Corollary 2's lower bound and sit within a
/// constant factor of total traffic (no WA reordering possible).
#[test]
fn fft_write_lower_bound_holds_in_simulation() {
    let n = 1 << 12;
    let m_words = 512;
    let cfg = lru(m_words);
    let mut mem = SimMem::new(2 * n, MemSim::two_level(cfg));
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
        .collect();
    for (i, v) in x.iter().enumerate() {
        mem.st(2 * i, v.re);
        mem.st(2 * i + 1, v.im);
    }
    let data = std::mem::take(&mut mem.data);
    let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
    fft_mem(&mut mem, 0, n);
    mem.sim.flush();
    let c = mem.sim.llc();
    let writes_words = (c.victims_m + c.flush_victims_m) * 8;
    // Corollary 2 (constants absorbed: the bound is Ω(n log n / log M)/2;
    // at line granularity an 1/8 slack is conservative).
    let lb = bounds::fft_write_lower(n as u64, m_words as u64);
    assert!(
        writes_words as f64 > lb / 8.0,
        "writes {writes_words} below Corollary 2 bound {lb}"
    );
    // And the result is a correct DFT (spot-check a few bins against the
    // O(n²) reference on a truncated signal is too slow; use Parseval).
    let input_energy: f64 = x.iter().map(|c| c.re * c.re + c.im * c.im).sum();
    let mut output_energy = 0.0;
    for i in 0..n {
        let (re, im) = (mem.data[2 * i], mem.data[2 * i + 1]);
        output_energy += re * re + im * im;
    }
    assert!(
        (output_energy / (n as f64) / input_energy - 1.0).abs() < 1e-9,
        "Parseval violated"
    );
}

/// Small-size FFT equals the direct DFT through the simulated memory.
#[test]
fn fft_through_simulator_matches_reference() {
    let n = 64;
    let cfg = lru(128);
    let x: Vec<Complex> = (0..n)
        .map(|i| Complex::new((i as f64).sin(), (i as f64 * 0.5).cos()))
        .collect();
    let want = dft_reference(&x);
    let mut mem = SimMem::new(2 * n, MemSim::two_level(cfg));
    for (i, v) in x.iter().enumerate() {
        mem.st(2 * i, v.re);
        mem.st(2 * i + 1, v.im);
    }
    fft_mem(&mut mem, 0, n);
    for (k, w) in want.iter().enumerate() {
        let got = Complex::new(mem.data[2 * k], mem.data[2 * k + 1]);
        assert!(got.sub(*w).abs() < 1e-9 * n as f64);
    }
}
