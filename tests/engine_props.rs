//! Property tests on the engine layer's bookkeeping types: `Traffic`
//! aggregation is a commutative monoid, the load/store → read/write
//! decomposition of the refined model holds for arbitrary event
//! sequences, and `ExplicitHier` enforces its fast-level capacities.

use proptest::prelude::*;
use write_avoiding::memsim::ExplicitHier;
use write_avoiding::wa_core::{BoundaryTraffic, Traffic};

fn traffic_strategy() -> impl Strategy<Value = Traffic> {
    (0u64..1 << 40, 0u64..1 << 20, 0u64..1 << 40, 0u64..1 << 20).prop_map(
        |(load_words, load_msgs, store_words, store_msgs)| Traffic {
            load_words,
            load_msgs,
            store_words,
            store_msgs,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a + b) + c == a + (b + c), a + b == b + a, ZERO is the identity.
    #[test]
    fn traffic_add_is_an_abelian_monoid(
        a in traffic_strategy(),
        b in traffic_strategy(),
        c in traffic_strategy(),
    ) {
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!(a + Traffic::ZERO, a);
    }

    /// `+=` agrees with `+`, including when folded over a whole sequence.
    #[test]
    fn traffic_add_assign_matches_add(ts in prop::collection::vec(traffic_strategy(), 0..8)) {
        let mut acc = Traffic::ZERO;
        for t in &ts {
            acc += *t;
        }
        let folded = ts.iter().fold(Traffic::ZERO, |s, &t| s + t);
        prop_assert_eq!(acc, folded);
    }

    /// The refined model's decomposition: every load is a read from slow
    /// plus a write to fast, every store a write to slow — for any event
    /// sequence, the derived counts are exactly the load/store sums.
    #[test]
    fn load_store_decomposes_into_reads_and_writes(
        events in prop::collection::vec((any::<bool>(), 1u64..1000), 1..50),
    ) {
        let mut t = Traffic::ZERO;
        let (mut loads, mut stores, mut nl, mut ns) = (0u64, 0u64, 0u64, 0u64);
        for &(is_load, words) in &events {
            if is_load {
                t.load(words);
                loads += words;
                nl += 1;
            } else {
                t.store(words);
                stores += words;
                ns += 1;
            }
        }
        prop_assert_eq!(t.writes_to_fast(), loads);
        prop_assert_eq!(t.reads_from_slow(), loads);
        prop_assert_eq!(t.writes_to_slow(), stores);
        prop_assert_eq!(t.total_words(), loads + stores);
        prop_assert_eq!(t.total_msgs(), nl + ns);
    }

    /// `writes_into_level` decomposes boundary traffic per the level
    /// semantics: loads land one level up, stores one level down, and the
    /// totals across levels account for every word moved plus the loads
    /// double-counted into the fast side — i.e. sum over levels equals
    /// sum of (loads + stores) per boundary.
    #[test]
    fn writes_into_levels_account_for_all_boundary_words(
        per_boundary in prop::collection::vec((0u64..1 << 20, 0u64..1 << 20), 1..5),
    ) {
        let levels = per_boundary.len() + 1;
        let mut bt = BoundaryTraffic::new(levels);
        for (i, &(l, s)) in per_boundary.iter().enumerate() {
            bt.boundary_mut(i).load(l);
            bt.boundary_mut(i).store(s);
        }
        for (i, &(l, s)) in per_boundary.iter().enumerate() {
            // Level i+1 receives boundary i's loads plus boundary i-1's stores.
            let from_below = if i > 0 { per_boundary[i - 1].1 } else { 0 };
            prop_assert_eq!(bt.writes_into_level(i + 1), l + from_below);
            let _ = s;
        }
        // Bottom level receives only the last boundary's stores.
        prop_assert_eq!(bt.writes_into_level(levels), per_boundary[levels - 2].1);
        let total: u64 = (1..=levels).map(|l| bt.writes_into_level(l)).sum();
        let moved: u64 = per_boundary.iter().map(|&(l, s)| l + s).sum();
        prop_assert_eq!(total, moved);
    }

    /// Within-capacity load/alloc/free sequences never trip the capacity
    /// assertion, and residency/peak never exceed the configured size.
    #[test]
    fn explicit_hier_tracks_residency_within_capacity(
        cap in 16u64..4096,
        ops in prop::collection::vec((0u8..3, 1u64..64), 1..60),
    ) {
        let mut h = ExplicitHier::two_level(cap);
        let mut resident = 0u64;
        for &(kind, words) in &ops {
            match kind {
                0 if resident + words <= cap => {
                    h.load(0, words);
                    resident += words;
                }
                1 if resident + words <= cap => {
                    h.alloc(1, words);
                    resident += words;
                }
                2 if words <= resident => {
                    h.free(1, words);
                    resident -= words;
                }
                _ => {} // would violate a precondition; skip
            }
            prop_assert_eq!(h.resident(1), resident);
            prop_assert!(h.peak(1) <= cap);
        }
    }

    /// Any load pushing residency past the capacity panics (the model
    /// *enforces* the paper's M-word fast memory, it does not saturate).
    #[test]
    fn explicit_hier_rejects_over_capacity_loads(
        cap in 16u64..512,
        fill in 1u64..512,
    ) {
        prop_assume!(fill <= cap);
        let over = cap - fill + 1;
        let result = std::panic::catch_unwind(|| {
            let mut h = ExplicitHier::two_level(cap);
            h.load(0, fill);
            h.load(0, over); // fill + over = cap + 1 > cap
        });
        prop_assert!(result.is_err(), "overflow load must panic");
    }

    /// Stores and frees beyond current residency are rejected too.
    #[test]
    fn explicit_hier_rejects_phantom_stores(
        cap in 16u64..512,
        resident in 0u64..256,
    ) {
        prop_assume!(resident < cap);
        let result = std::panic::catch_unwind(|| {
            let mut h = ExplicitHier::two_level(cap);
            if resident > 0 {
                h.load(0, resident);
            }
            h.store(0, resident + 1);
        });
        prop_assert!(result.is_err(), "storing more than resident must panic");
    }
}
