//! Direct N-body: the flops-vs-writes tension of §4.4.
//!
//! ```sh
//! cargo run --release --example nbody_traffic
//! ```
//!
//! Runs the write-avoiding blocked (N,2)-body (Algorithm 4), the
//! symmetry-exploiting variant (half the interactions, Θ(N²/b) writes),
//! and the (N,3)-body kernel, with the explicit-model counters, then
//! prices the traffic under NVM-like write costs to show when halving
//! flops is a bad trade.

use write_avoiding::memsim::ExplicitHier;
use write_avoiding::nbody::explicit::{explicit_kbody_wa, explicit_nbody_wa};
use write_avoiding::nbody::force::{reference_forces, Particle};
use write_avoiding::nbody::symmetric::explicit_nbody_symmetric;
use write_avoiding::wa_core::bounds;

fn main() {
    let n = 512;
    let m = 96; // fast memory, in particles
    let cloud = Particle::random_cloud(n, 7);
    let want = reference_forces(&cloud);

    println!("direct (N,2)-body, N = {n}, fast memory M = {m} particles\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12}",
        "variant", "loads", "stores", "flops", "NVM cost"
    );
    // Cost model: a store to NVM costs 10x a load.
    let price = |loads: u64, stores: u64| loads as f64 + 10.0 * stores as f64;

    let mut h = ExplicitHier::two_level(m as u64);
    let f = explicit_nbody_wa(&cloud, &mut h);
    for (a, b) in f.iter().zip(&want) {
        assert!(a.max_abs_diff(*b) < 1e-10);
    }
    let t = h.traffic().boundary(0);
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12.0}",
        "WA (Algorithm 4)",
        t.load_words,
        t.store_words,
        h.flops(),
        price(t.load_words, t.store_words)
    );

    let mut hs = ExplicitHier::two_level(m as u64);
    let fs = explicit_nbody_symmetric(&cloud, &mut hs);
    for (a, b) in fs.iter().zip(&want) {
        assert!(a.max_abs_diff(*b) < 1e-10);
    }
    let ts = hs.traffic().boundary(0);
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12.0}",
        "symmetric (Newton's 3rd)",
        ts.load_words,
        ts.store_words,
        hs.flops(),
        price(ts.load_words, ts.store_words)
    );

    println!(
        "\nlower bounds: loads+stores >= {:.0} (Ω(N²/M)), stores >= {} (output)",
        bounds::nbody_ldst_lower(n as u64, 2, m as u64),
        n
    );
    println!("halving the flops multiplies NVM writes by ~N/b — on write-expensive memory the WA order wins.\n");

    // Three-body teaser at small N (O(N³) interactions).
    let n3 = 64;
    let cloud3 = Particle::random_cloud(n3, 8);
    let mut h3 = ExplicitHier::two_level(64);
    let _ = explicit_kbody_wa(&cloud3, &mut h3);
    let t3 = h3.traffic().boundary(0);
    println!(
        "(N,3)-body, N = {n3}: loads = {} (Ω(N³/M²) = {:.0}), stores = {} = N",
        t3.load_words,
        bounds::nbody_ldst_lower(n3 as u64, 3, 64),
        t3.store_words
    );
}
