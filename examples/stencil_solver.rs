//! Solving a 2-D Poisson problem with write-avoiding Krylov methods.
//!
//! ```sh
//! cargo run --release --example stencil_solver
//! ```
//!
//! Runs CG, s-step CA-CG, and the streaming-matrix-powers CA-CG on the
//! same 5-point stencil system and reports solution quality and
//! slow-memory traffic: the paper's Θ(s) write reduction, live.

use write_avoiding::krylov::basis::BasisKind;
use write_avoiding::krylov::cacg::{ca_cg, CaCgOptions};
use write_avoiding::krylov::cg::cg;
use write_avoiding::krylov::counter::IoTally;
use write_avoiding::krylov::stencil::laplacian_2d;
use write_avoiding::wa_core::XorShift;

fn main() {
    let nx = 64;
    let a = laplacian_2d(nx, nx, 0.05);
    let n = a.rows;
    let mut rng = XorShift::new(2026);
    let x_true: Vec<f64> = (0..n).map(|_| rng.next_unit() - 0.5).collect();
    let mut b = vec![0.0; n];
    a.spmv(&x_true, &mut b);
    let x0 = vec![0.0; n];
    let s = 6;
    let tol = 1e-10;

    println!("2-D Poisson, {nx}x{nx} grid (n = {n}), 5-point stencil, s = {s}\n");
    println!(
        "{:<22} {:>6} {:>12} {:>12} {:>14} {:>10}",
        "method", "steps", "writes", "reads", "writes/step/n", "residual"
    );

    let mut io = IoTally::default();
    let r = cg(&a, &b, &x0, tol, 4000, &mut io);
    let report = |name: &str, steps: usize, io: &IoTally, res: f64| {
        println!(
            "{name:<22} {steps:>6} {:>12} {:>12} {:>14.2} {res:>10.2e}",
            io.writes(),
            io.reads(),
            io.writes() as f64 / steps.max(1) as f64 / n as f64
        );
    };
    report("CG", r.iters, &io, r.residual);

    for (streaming, name) in [(false, "CA-CG (storing)"), (true, "CA-CG (streaming)")] {
        let mut io = IoTally::default();
        let r = ca_cg(
            &a,
            &b,
            &x0,
            &CaCgOptions {
                s,
                basis: BasisKind::Monomial,
                streaming,
                block_rows: 4 * nx,
                tol,
                max_outer: 1000,
            },
            &mut io,
        );
        report(name, r.iters, &io, r.residual);
        let err =
            r.x.iter()
                .zip(&x_true)
                .map(|(u, v)| (u - v).abs())
                .fold(0.0, f64::max);
        assert!(err < 1e-5, "solution error {err}");
    }

    println!(
        "\nStreaming matrix powers: ~4n writes/CG-step -> ~3n/s writes/step, paying <=2x reads."
    );
}
