//! NVM scenario: factorizing a matrix whose home is a nonvolatile memory
//! with asymmetric read/write cost — the paper's motivating setting.
//!
//! ```sh
//! cargo run --release --example nvm_cholesky
//! ```
//!
//! Runs left-looking (write-avoiding) and right-looking Cholesky through
//! the cache simulator and prices the resulting DRAM/NVM traffic with
//! asymmetric costs (reading NVM ~DRAM-speed, writing ~10× slower),
//! showing when instruction order alone changes the energy/time story.

use write_avoiding::dense::cholesky::{blocked_cholesky, CholVariant};
use write_avoiding::dense::desc::alloc_layout;
use write_avoiding::memsim::{CacheConfig, MemSim, Policy, SimMem};
use write_avoiding::wa_core::Mat;

fn main() {
    let n = 192;
    let bsize = 16;
    // The "cache" is DRAM here; the backing store is NVM.
    let dram_words = 5 * bsize * bsize + 8;
    let cfg = CacheConfig {
        capacity_words: dram_words,
        line_words: 8,
        ways: 0,
        policy: Policy::Lru,
    };
    // Costs per line moved (arbitrary energy units): NVM reads cheap,
    // NVM writes 10x.
    let (read_cost, write_cost) = (1.0, 10.0);

    let a = Mat::random_spd(n, 42);
    println!("Cholesky of a {n}x{n} SPD matrix, DRAM = {dram_words} words, NVM write/read cost = {write_cost}/{read_cost}\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>10}",
        "variant", "NVM reads", "NVM writes", "energy", "vs LL"
    );

    let mut baseline = None;
    for (name, v) in [
        ("left-looking (Algorithm 3)", CholVariant::LeftLooking),
        ("right-looking", CholVariant::RightLooking),
    ] {
        let (d, words) = alloc_layout(&[(n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &a);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        blocked_cholesky(&mut mem, d[0], bsize, v);
        mem.sim.flush();

        // Verify the factorization before trusting the counters.
        let l = d[0].load_mat(&mut mem).lower_triangular();
        let err = l.matmul_ref(&l.transpose()).max_abs_diff(&{
            let mut full = a.clone();
            for i in 0..n {
                for j in i + 1..n {
                    full[(i, j)] = full[(j, i)];
                }
            }
            full
        });
        assert!(err < 1e-6 * n as f64, "factorization error {err}");

        let c = mem.sim.llc();
        let reads = c.fills;
        let writes = c.victims_m + c.flush_victims_m;
        let energy = reads as f64 * read_cost + writes as f64 * write_cost;
        let rel = match baseline {
            None => {
                baseline = Some(energy);
                1.0
            }
            Some(b) => energy / b,
        };
        println!("{name:<28} {reads:>12} {writes:>12} {energy:>12.0} {rel:>9.2}x");
    }
    println!("\nSame flops, same result — the left-looking order avoids rewriting the trailing matrix to NVM.");
}
