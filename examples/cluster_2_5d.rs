//! Model 2.1 decision support: should a cluster use node-local NVM to
//! replicate more copies in 2.5D matmul?
//!
//! ```sh
//! cargo run --release --example cluster_2_5d
//! ```
//!
//! Sweeps the replication factor c, runs the event simulator (with real
//! arithmetic, verified), and evaluates the paper's decision ratio
//! `√(c3/c2)·βNW / (βNW + 1.5β23 + β32)` across NVM write speeds.

use write_avoiding::parallel::costmodel::model21_decision_ratio;
use write_avoiding::parallel::machine::{Machine, Staging};
use write_avoiding::parallel::mm25d::{mm25d, Mm25Config};
use write_avoiding::wa_core::{CostParams, Mat};

fn main() {
    let n = 64;
    let p = 64;
    let a = Mat::random(n, n, 7);
    let b = Mat::random(n, n, 8);
    let want = a.matmul_ref(&b);

    println!("2.5D matmul on P = {p} simulated nodes, n = {n} (counts are per-node maxima)\n");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>12}",
        "configuration", "net words", "NVM reads", "NVM writes", "est. time(s)"
    );
    for (c, at) in [
        (1, Staging::L2),
        (4, Staging::L2),
        (4, Staging::L3),
        (16, Staging::L3),
    ] {
        let q2 = p / c;
        let q = (q2 as f64).sqrt() as usize;
        if q * q * c != p || n % q != 0 {
            continue;
        }
        let mut m = Machine::new(p, CostParams::nvm_cluster());
        let got = mm25d(
            &mut m,
            &a,
            &b,
            Mm25Config {
                p,
                c,
                at,
                ool2: false,
                m2: 4 << 20,
            },
        );
        assert!(got.max_abs_diff(&want) < 1e-9);
        let mc = m.max_counters();
        println!(
            "{:<26} {:>10} {:>10} {:>10} {:>12.3e}",
            format!("c = {c}, staged in {at:?}"),
            mc.net_words(),
            mc.l3_read_words,
            mc.l3_write_words,
            m.critical_time()
        );
    }

    println!("\nDecision ratio vs NVM write bandwidth (c2 = 1, c3 = 16):");
    println!("{:>16} {:>10}  verdict", "NVM write GB/s", "ratio");
    for write_gbs in [0.1, 0.5, 2.0, 10.0, 40.0] {
        let mut cp = CostParams::nvm_cluster();
        cp.beta_23 = 8.0 / (write_gbs * 1e9);
        let r = model21_decision_ratio(1.0, 16.0, &cp);
        println!(
            "{write_gbs:>16} {r:>10.3}  {}",
            if r > 1.0 {
                "replicate via NVM"
            } else {
                "stay in DRAM"
            }
        );
    }
}
