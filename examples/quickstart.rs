//! Quickstart: count reads and writes of a write-avoiding matmul.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the two instrumentation substrates on the same kernel:
//! the *explicit-movement* model (the paper's Algorithm 1 accounting) and
//! the *cache simulator* (the paper's Section 6 hardware-counter view).

use write_avoiding::dense::desc::alloc_layout;
use write_avoiding::dense::explicit_mm::explicit_mm_two_level;
use write_avoiding::dense::matmul::{blocked_matmul, LoopOrder};
use write_avoiding::memsim::{CacheConfig, ExplicitHier, MemSim, Policy, SimMem};
use write_avoiding::wa_core::{bounds, Mat};

fn main() {
    let n = 96;
    let fast_words: usize = 768; // M: fast memory of the two-level model
    let a = Mat::random(n, n, 1);
    let b = Mat::random(n, n, 2);

    // ---------------------------------------------------------------
    // 1. Explicit-movement model: the algorithm issues block transfers.
    // ---------------------------------------------------------------
    println!("== explicit model (Algorithm 1, M = {fast_words} words) ==");
    for order in [LoopOrder::Ijk, LoopOrder::Kij] {
        let mut c = Mat::zeros(n, n);
        let mut hier = ExplicitHier::two_level(fast_words as u64);
        explicit_mm_two_level(&a, &b, &mut c, &mut hier, order);
        assert!(c.max_abs_diff(&a.matmul_ref(&b)) < 1e-9);
        let t = hier.traffic().boundary(0);
        println!(
            "{order:?} (write-avoiding: {}): loads = {:7} w, stores = {:7} w  (output = {} w)",
            order.is_write_avoiding(),
            t.load_words,
            t.store_words,
            n * n
        );
    }
    println!(
        "lower bounds: loads+stores >= {:.0} w, stores >= {} w",
        bounds::matmul_ldst_lower(n as u64, n as u64, n as u64, fast_words as u64),
        bounds::writes_to_slow_lower((n * n) as u64),
    );

    // ---------------------------------------------------------------
    // 2. Cache simulator: hardware-managed LRU cache, counted in lines.
    // ---------------------------------------------------------------
    println!("\n== cache simulator (fully-associative LRU, same M) ==");
    let cfg = CacheConfig {
        capacity_words: fast_words,
        line_words: 8,
        ways: 0,
        policy: Policy::Lru,
    };
    for order in [LoopOrder::Ijk, LoopOrder::Kij] {
        let (d, words) = alloc_layout(&[(n, n), (n, n), (n, n)]);
        let mut mem = SimMem::new(words, MemSim::two_level(cfg));
        d[0].store_mat(&mut mem, &a);
        d[1].store_mat(&mut mem, &b);
        let data = std::mem::take(&mut mem.data);
        let mut mem = SimMem::from_vec(data, MemSim::two_level(cfg));
        // Proposition 6.1: under hardware LRU the WA guarantee needs five
        // blocks resident (vs three under explicit control).
        let bsize = ((fast_words / 5) as f64).sqrt() as usize;
        blocked_matmul(&mut mem, d[0], d[1], d[2], bsize, order);
        mem.sim.flush();
        let c = mem.sim.llc();
        println!(
            "{order:?}: VICTIMS.M = {:5} lines, VICTIMS.E = {:6} lines, FILLS = {:6} lines (C = {} lines)",
            c.victims_m + c.flush_victims_m,
            c.victims_e,
            c.fills,
            n * n / 8
        );
    }
    println!(
        "\nk-innermost keeps write-backs at the output size; k-outermost rewrites C every panel."
    );
}
